"""Recursive-descent parser for the EK kernel language.

Grammar (EBNF)::

    program   := stmt*
    stmt      := "var" IDENT "=" expr
               | "array" IDENT "[" NUMBER "]" ("=" "[" numlist "]")?
               | "while" expr "{" stmt* "}"
               | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
               | "return" expr
               | IDENT ("[" expr "]")? "=" expr
    expr      := or  ( ("&&" | "||") are not supported; use & | )
    precedence (low to high):
        cmp:   == != < <= > >=
        bitor: |
        bitxor:^
        bitand:&
        shift: << >>
        add:   + -
        mul:   * / %
        unary: - ~
        atom:  NUMBER | IDENT | IDENT "[" expr "]" | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CompileError
from .ast_nodes import (ArrayDecl, Assign, BinOp, Expr, If, Index, Number,
                        ProgramAst, Return, Stmt, UnOp, VarDecl, VarRef,
                        While)
from .lexer import TokKind, Token, tokenize

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_LEVELS = [
    _CMP_OPS,
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


def parse(source: str) -> ProgramAst:
    """Parse EK source into an AST."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.current.line)

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokKind.EOF:
            self.pos += 1
        return token

    def accept(self, text: str) -> Optional[Token]:
        if self.current.text == text \
                and self.current.kind is not TokKind.EOF:
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        token = self.accept(text)
        if token is None:
            raise self.error(f"expected {text!r}, found "
                             f"{self.current.text!r}")
        return token

    def expect_ident(self) -> Token:
        if self.current.kind is not TokKind.IDENT:
            raise self.error(f"expected a name, found "
                             f"{self.current.text!r}")
        return self.advance()

    def expect_number(self) -> int:
        if self.current.kind is not TokKind.NUMBER:
            raise self.error(f"expected a number, found "
                             f"{self.current.text!r}")
        return int(self.advance().text, 0)

    # ------------------------------------------------------------------

    def parse_program(self) -> ProgramAst:
        statements = self.parse_stmts(top_level=True)
        if self.current.kind is not TokKind.EOF:
            raise self.error(f"unexpected {self.current.text!r}")
        return ProgramAst(statements)

    def parse_stmts(self, top_level: bool = False) -> List[Stmt]:
        statements: List[Stmt] = []
        while True:
            token = self.current
            if token.kind is TokKind.EOF:
                if not top_level:
                    raise self.error("unexpected end of input (missing '}')")
                return statements
            if token.text == "}":
                if top_level:
                    raise self.error("unmatched '}'")
                return statements
            statements.append(self.parse_stmt())

    def parse_stmt(self) -> Stmt:
        token = self.current
        line = token.line
        if token.kind is TokKind.KEYWORD:
            if token.text == "var":
                return self._parse_var(line)
            if token.text == "array":
                return self._parse_array(line)
            if token.text == "while":
                return self._parse_while(line)
            if token.text == "if":
                return self._parse_if(line)
            if token.text == "return":
                self.advance()
                return Return(line=line, value=self.parse_expr())
            raise self.error(f"unexpected keyword {token.text!r}")
        if token.kind is TokKind.IDENT:
            return self._parse_assign(line)
        raise self.error(f"unexpected {token.text!r}")

    def _parse_var(self, line: int) -> VarDecl:
        self.advance()
        name = self.expect_ident().text
        self.expect("=")
        return VarDecl(line=line, name=name, init=self.parse_expr())

    def _parse_array(self, line: int) -> ArrayDecl:
        self.advance()
        name = self.expect_ident().text
        self.expect("[")
        size = self.expect_number()
        self.expect("]")
        init: List[int] = []
        if self.accept("="):
            self.expect("[")
            if not self.accept("]"):
                while True:
                    negative = self.accept("-") is not None
                    value = self.expect_number()
                    init.append(-value if negative else value)
                    if not self.accept(","):
                        break
                self.expect("]")
        if size <= 0:
            raise CompileError(f"array {name!r} must have positive size",
                               line)
        if len(init) > size:
            raise CompileError(
                f"array {name!r}: {len(init)} initialisers for "
                f"{size} elements", line)
        return ArrayDecl(line=line, name=name, size=size, init=init)

    def _parse_while(self, line: int) -> While:
        self.advance()
        cond = self.parse_expr()
        self.expect("{")
        body = self.parse_stmts()
        self.expect("}")
        return While(line=line, cond=cond, body=body)

    def _parse_if(self, line: int) -> If:
        self.advance()
        cond = self.parse_expr()
        self.expect("{")
        then_body = self.parse_stmts()
        self.expect("}")
        else_body: List[Stmt] = []
        if self.accept("else"):
            if self.current.text == "if":
                else_body = [self._parse_if(self.current.line)]
            else:
                self.expect("{")
                else_body = self.parse_stmts()
                self.expect("}")
        return If(line=line, cond=cond, then_body=then_body,
                  else_body=else_body)

    def _parse_assign(self, line: int) -> Assign:
        name = self.expect_ident().text
        index: Optional[Expr] = None
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
        self.expect("=")
        return Assign(line=line, target=name, index=index,
                      value=self.parse_expr())

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self, level: int = 0) -> Expr:
        if level >= len(_LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _LEVELS[level]
        while self.current.kind is TokKind.OP and self.current.text in ops:
            op = self.advance().text
            right = self.parse_expr(level + 1)
            left = BinOp(line=left.line, op=op, left=left, right=right)
        return left

    def parse_unary(self) -> Expr:
        token = self.current
        if token.kind is TokKind.OP and token.text in ("-", "~", "!"):
            self.advance()
            return UnOp(line=token.line, op=token.text,
                        operand=self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.current
        if token.kind is TokKind.NUMBER:
            self.advance()
            return Number(line=token.line, value=int(token.text, 0))
        if token.kind is TokKind.IDENT:
            self.advance()
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return Index(line=token.line, array=token.text, index=index)
            return VarRef(line=token.line, name=token.text)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"unexpected {token.text!r} in expression")

"""Lexer for the EK kernel language.

EK is a tiny imperative language for writing EDGE workloads::

    var i = 0
    var sum = 0
    array a[8] = [1, 2, 3, 4, 5, 6, 7, 8]
    while i < 8 {
        sum = sum + a[i]
        i = i + 1
    }
    return sum

Tokens: identifiers, integer literals (decimal/hex), operators,
punctuation, and the keywords ``var array while if else return``.
``#`` starts a line comment.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List

from ..errors import CompileError

KEYWORDS = frozenset({"var", "array", "while", "if", "else", "return"})


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}"


#: Longest-first so multi-char operators win.
_OPERATORS = ["<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
              "+", "-", "*", "/", "%", "&", "|", "^", "~", "<", ">", "=",
              "!"]
_PUNCT = ["(", ")", "{", "}", "[", "]", ",", ";"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCT) + r""")
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CompileError(
                f"unexpected character {source[pos]!r}", line)
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        if match.lastgroup == "newline":
            line += 1
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokKind.NUMBER, text, line))
        elif match.lastgroup == "ident":
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, line))
        elif match.lastgroup == "op":
            tokens.append(Token(TokKind.OP, text, line))
        else:
            tokens.append(Token(TokKind.PUNCT, text, line))
    tokens.append(Token(TokKind.EOF, "<eof>", line))
    return tokens
